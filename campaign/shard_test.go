package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"path/filepath"
	"testing"

	"ctsan/internal/checkpoint"
)

// shardTestStudy is a small cross-engine grid: fast enough for unit
// tests, wide enough to exercise per-point seeds, labels, and replica
// defaults across all three engines.
func shardTestStudy() *Study {
	return NewStudy("shard-test",
		SANPoint{N: 3, Replicas: 60},
		LatencyPoint{N: 3, Executions: 25},
		SANPoint{Name: "pinned-seed", N: 4, Replicas: 40, Seed: 99},
		LatencyPoint{N: 3, Executions: 25, TimeoutT: 30},
		SANPoint{N: 5, Replicas: 40, TSend: 0.05},
	)
}

// resultLines is the reference output: the exact JSONL bytes (one line
// per point, no trailing newline) a 1-process run emits.
func resultLines(t *testing.T, study *Study, opts ...Option) [][]byte {
	t.Helper()
	results, err := RunCollect(context.Background(), study, opts...)
	if err != nil {
		t.Fatal(err)
	}
	lines := make([][]byte, len(results))
	for i, r := range results {
		buf, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		lines[i] = buf
	}
	return lines
}

func TestStudySpecRoundTrip(t *testing.T) {
	study := shardTestStudy()
	spec, err := EncodeStudy(study)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeStudy(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec2, err := EncodeStudy(decoded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(spec, spec2) {
		t.Fatal("encode→decode→encode is not byte-stable")
	}
	// The decoded study must *run* identically, not just look identical.
	ref := resultLines(t, study, WithSeed(7), WithWorkers(1))
	got := resultLines(t, decoded, WithSeed(7), WithWorkers(1))
	for i := range ref {
		if !bytes.Equal(ref[i], got[i]) {
			t.Fatalf("point %d diverged after spec round trip:\n%s\n%s", i, ref[i], got[i])
		}
	}
}

func TestDecodeStudyRejectsBadSpecs(t *testing.T) {
	for name, spec := range map[string]string{
		"bad version":    `{"v":2,"name":"x","points":[]}`,
		"unknown engine": `{"v":1,"name":"x","points":[{"engine":"quantum","spec":{}}]}`,
		"unknown field":  `{"v":1,"name":"x","points":[{"engine":"san","spec":{"N":3,"Replicaz":10}}]}`,
		"not json":       `-`,
	} {
		if _, err := DecodeStudy([]byte(spec)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestFrozenRunsIdentically(t *testing.T) {
	study := shardTestStudy()
	opts := []Option{WithSeed(11), WithReplicas(30), WithWorkers(1)}
	frozen, err := Frozen(study, opts...)
	if err != nil {
		t.Fatal(err)
	}
	ref := resultLines(t, study, opts...)
	// The frozen study runs identically WITHOUT the options: everything
	// they resolved is pinned into the points.
	got := resultLines(t, frozen, WithWorkers(1))
	for i := range ref {
		if !bytes.Equal(ref[i], got[i]) {
			t.Fatalf("point %d diverged after freezing:\n%s\n%s", i, ref[i], got[i])
		}
	}
	// Freezing is idempotent: a second freeze changes nothing.
	again, err := Frozen(frozen)
	if err != nil {
		t.Fatal(err)
	}
	s1, _ := EncodeStudy(frozen)
	s2, _ := EncodeStudy(again)
	if !bytes.Equal(s1, s2) {
		t.Fatal("freezing is not idempotent")
	}
}

func TestPointHash(t *testing.T) {
	p := SANPoint{N: 3, Replicas: 60, Seed: 1}
	h1, err := PointHash(p)
	if err != nil {
		t.Fatal(err)
	}
	h2, _ := PointHash(p)
	if h1 != h2 {
		t.Fatal("hash not deterministic")
	}
	for name, q := range map[string]Point{
		"different seed":    SANPoint{N: 3, Replicas: 60, Seed: 2},
		"different n":       SANPoint{N: 4, Replicas: 60, Seed: 1},
		"different engine":  LatencyPoint{N: 3, Seed: 1},
		"differentnreplica": SANPoint{N: 3, Replicas: 61, Seed: 1},
	} {
		h, err := PointHash(q)
		if err != nil {
			t.Fatal(err)
		}
		if h == h1 {
			t.Errorf("%s: hash collision with base point", name)
		}
	}
}

func TestShardRecordRoundTrip(t *testing.T) {
	frozen, err := Frozen(shardTestStudy(), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	results, err := RunCollect(context.Background(), frozen, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	hashes, err := StudyPointHashes(frozen)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		line, err := EncodeShardRecord(hashes[i], res)
		if err != nil {
			t.Fatal(err)
		}
		rec, err := DecodeShardRecord(line)
		if err != nil {
			t.Fatal(err)
		}
		if rec.Index != i || rec.PointHash != hashes[i] || rec.Seed != res.Seed {
			t.Fatalf("record %d header mismatch: %+v", i, rec)
		}
		want, _ := json.Marshal(res)
		if !bytes.Equal(rec.Result, want) {
			t.Fatalf("record %d result bytes differ from the in-process JSON", i)
		}
		back, err := rec.DecodeResult()
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range []float64{0, 0.5, 0.9, 0.99, 1} {
			a, b := res.Quantile(q), back.Quantile(q)
			if math.Float64bits(a) != math.Float64bits(b) {
				t.Fatalf("record %d: q=%g digest quantile %v != %v after round trip", i, q, b, a)
			}
		}
		if got, _ := json.Marshal(back); !bytes.Equal(got, want) {
			t.Fatalf("record %d: re-marshaled decoded result differs", i)
		}
	}
}

func TestShardRecordRejectsCorruption(t *testing.T) {
	frozen, err := Frozen(NewStudy("s", SANPoint{N: 3, Replicas: 20}), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	results, err := RunCollect(context.Background(), frozen, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	hashes, _ := StudyPointHashes(frozen)
	line, err := EncodeShardRecord(hashes[0], results[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeShardRecord(line); err != nil {
		t.Fatalf("pristine record rejected: %v", err)
	}
	// Flip one bit inside the body: the CRC must catch it.
	bad := append([]byte(nil), line...)
	bad[len(bad)/2] ^= 0x01
	if _, err := DecodeShardRecord(bad); err == nil {
		t.Fatal("bit-flipped record accepted")
	}
	if _, err := DecodeShardRecord([]byte(`{"crc":"00000000","body":{}}`)); err == nil {
		t.Fatal("wrong CRC accepted")
	}
	if _, err := DecodeShardRecord([]byte(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

// TestShardedRunMatchesSingleProcess is the in-process differential core
// of the crash-safe sharding layer: executing a frozen study as several
// checkpointed shard ranges and merging the stores reproduces, byte for
// byte, the JSONL a 1-process run emits.
func TestShardedRunMatchesSingleProcess(t *testing.T) {
	study := shardTestStudy()
	frozen, err := Frozen(study, WithSeed(21))
	if err != nil {
		t.Fatal(err)
	}
	ref := resultLines(t, study, WithSeed(21), WithWorkers(1))

	dir := t.TempDir()
	ctx := context.Background()
	var lines [][]byte
	for _, r := range [][2]int{{0, 2}, {2, 3}, {3, 5}} {
		store, err := checkpoint.Open(filepath.Join(dir, nameRange(r[0], r[1])))
		if err != nil {
			t.Fatal(err)
		}
		if err := RunShardRange(ctx, frozen, r[0], r[1], store, nil, WithWorkers(2)); err != nil {
			t.Fatal(err)
		}
		lines = append(lines, store.Records()...)
	}
	records, skipped, err := MergeShardRecords(frozen, lines)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 {
		t.Fatalf("%d records skipped in a clean run", skipped)
	}
	for i, rec := range records {
		if !bytes.Equal(rec.Result, ref[i]) {
			t.Fatalf("point %d: sharded result differs from 1-process run:\n%s\n%s", i, rec.Result, ref[i])
		}
	}
}

// TestShardResume pins the resume semantics: a store already holding
// some points causes only the missing ones to re-execute, and the final
// merged set is unchanged.
func TestShardResume(t *testing.T) {
	frozen, err := Frozen(shardTestStudy(), WithSeed(21))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Reference: the full range in one uninterrupted shard.
	full, err := checkpoint.Open(filepath.Join(t.TempDir(), "full"))
	if err != nil {
		t.Fatal(err)
	}
	if err := RunShardRange(ctx, frozen, 0, 5, full, nil, WithWorkers(1)); err != nil {
		t.Fatal(err)
	}

	// Interrupted run: execute only [0,2), i.e. a crash after two points.
	path := filepath.Join(t.TempDir(), "interrupted")
	store, err := checkpoint.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := RunShardRange(ctx, frozen, 0, 2, store, nil, WithWorkers(1)); err != nil {
		t.Fatal(err)
	}
	missing, _, err := MissingPoints(frozen, 0, 5, store.Records())
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != 3 {
		t.Fatalf("missing = %v, want the 3 unexecuted points", missing)
	}

	// Resume: re-open (crash forgets the process, not the file) and run
	// the full range; executed points must be skipped, and the store must
	// end up identical to the uninterrupted one.
	executed := 0
	store2, err := checkpoint.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	count := func(i int, line []byte) error { executed++; return nil }
	if err := RunShardRange(ctx, frozen, 0, 5, store2, count, WithWorkers(1)); err != nil {
		t.Fatal(err)
	}
	if executed != 3 {
		t.Fatalf("resume executed %d points, want 3", executed)
	}
	if len(store2.Records()) != len(full.Records()) {
		t.Fatalf("resumed store has %d records, want %d", len(store2.Records()), len(full.Records()))
	}
	for i := range full.Records() {
		if !bytes.Equal(store2.Records()[i], full.Records()[i]) {
			t.Fatalf("record %d differs between resumed and uninterrupted stores", i)
		}
	}

	// A second resume is a no-op.
	executed = 0
	if err := RunShardRange(ctx, frozen, 0, 5, store2, count, WithWorkers(1)); err != nil {
		t.Fatal(err)
	}
	if executed != 0 {
		t.Fatalf("fully-checkpointed shard re-executed %d points", executed)
	}
}

func TestMergeShardRecordsReportsMissingAndStale(t *testing.T) {
	frozen, err := Frozen(NewStudy("s", SANPoint{N: 3, Replicas: 20}, SANPoint{N: 4, Replicas: 20}), WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	results, err := RunCollect(context.Background(), frozen, WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	hashes, _ := StudyPointHashes(frozen)
	line0, err := EncodeShardRecord(hashes[0], results[0])
	if err != nil {
		t.Fatal(err)
	}
	// Only point 0 checkpointed: merge must fail naming point 1.
	if _, _, err := MergeShardRecords(frozen, [][]byte{line0}); err == nil {
		t.Fatal("incomplete merge succeeded")
	}
	// A record with a stale hash (spec changed since it was written) must
	// not satisfy its index.
	stale, err := EncodeShardRecord("sha256:deadbeef", results[1])
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := MergeShardRecords(frozen, [][]byte{line0, stale}); err == nil {
		t.Fatal("merge accepted a stale record")
	}
	line1, err := EncodeShardRecord(hashes[1], results[1])
	if err != nil {
		t.Fatal(err)
	}
	records, skipped, err := MergeShardRecords(frozen, [][]byte{stale, line1, line0, line1})
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 2 { // the stale record and the duplicate
		t.Fatalf("skipped = %d, want 2", skipped)
	}
	if records[0].Index != 0 || records[1].Index != 1 {
		t.Fatal("merged records out of index order")
	}
}

func nameRange(a, b int) string {
	return "shard-" + string(rune('0'+a)) + "-" + string(rune('0'+b)) + ".jsonl"
}

// FuzzDecodeShardRecord: the record decoder faces checkpoint files that
// survived crashes and bit rot; it must never panic and never accept a
// line whose CRC does not hold.
func FuzzDecodeShardRecord(f *testing.F) {
	frozen, err := Frozen(NewStudy("s", SANPoint{N: 3, Replicas: 10}), WithSeed(1))
	if err != nil {
		f.Fatal(err)
	}
	results, err := RunCollect(context.Background(), frozen, WithWorkers(1))
	if err != nil {
		f.Fatal(err)
	}
	hashes, _ := StudyPointHashes(frozen)
	line, err := EncodeShardRecord(hashes[0], results[0])
	if err != nil {
		f.Fatal(err)
	}
	f.Add(line)
	f.Add(line[:len(line)/2])
	flipped := append([]byte(nil), line...)
	flipped[len(flipped)/3] ^= 0x20
	f.Add(flipped)
	f.Add([]byte(`{"crc":"00000000","body":{}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := DecodeShardRecord(data)
		if err != nil {
			return
		}
		// Anything accepted must at least round-trip its digest; the
		// result may still be rejected by DecodeResult's cross-checks.
		if _, err := rec.DecodeResult(); err == nil {
			if rec.Index < 0 {
				t.Fatal("accepted record with negative index")
			}
		}
	})
}
