// Package campaign is the public evaluation surface of this repository:
// one API that runs the same study on every engine the paper's
// methodology spans — transient simulation of the Stochastic Activity
// Network model (SAN), measurement campaigns on the emulated cluster
// (Emulation), and declarative fault/workload scenarios (Scenario).
//
// A Study is a named grid of Points; each Point binds one engine with its
// configuration:
//
//	study := campaign.NewStudy("latency-vs-n",
//	    campaign.SANPoint{Name: "san-n5", N: 5, Replicas: 2000},
//	    campaign.LatencyPoint{Name: "meas-n5", N: 5, Executions: 1000},
//	    campaign.ScenarioPoint{Name: "gc-storm", Replicas: 4},
//	)
//	err := campaign.Run(ctx, study,
//	    campaign.WithSeed(1),
//	    campaign.WithWorkers(0), // one per CPU
//	    campaign.WithSink(campaign.NewJSONLWriter(os.Stdout)),
//	)
//
// Run fans the points (and the Monte-Carlo replicas inside them) across
// the deterministic worker pool. Three properties hold at every worker
// count:
//
//   - determinism: every result is bit-identical for a given seed — each
//     point draws from a child random stream keyed by its index, and the
//     per-point folds are serial (see PERFORMANCE.md);
//   - ordered streaming: sinks receive results in point-index order, as
//     soon as the contiguous prefix is complete — early points stream out
//     while later points still run;
//   - cancellation: the context is honored between points, between
//     replicas, and between consensus executions, so Ctrl-C (or a test
//     timeout) stops a campaign promptly with ctx.Err().
//
// Results are engine-uniform (Result with a latency Summary, abort
// counts, failure-detector QoS where measured); Sink implementations
// Collect, JSONLWriter, and TableSink cover programmatic, pipeline, and
// human consumption. The cmd/ binaries (testbed, sanrun, fdqos,
// scenario, repro) are thin shells over this package.
//
// Memory scales with the study, not with the execution count: every
// engine folds its samples into a streaming digest (internal/metrics),
// so a point running millions of executions retains kilobytes, and the
// Summary percentiles stay exact — bit-identical to the historical
// raw-slice path — for campaigns up to the digest's exact cap. The raw
// sample slice earlier revisions carried on every Result is replaced by
// the Samples method, which derives the ordered samples from the digest
// while it is exact and returns nil beyond the cap; Quantile queries the
// digest directly at any scale.
//
// Allocation follows the same discipline: the Emulation and Scenario
// engines do not construct a cluster per Monte-Carlo replica. Each
// worker of the pool owns one reusable assembly — emulated cluster,
// protocol stacks, consensus engines, failure detectors — and rewinds
// it between replicas (netsim.Cluster.Reset plus per-layer reset
// hooks), with message-transit, timer and consensus-instance records
// pooled on free lists, protocol payloads crossing the stack as flat
// typed values rather than heap-boxed any, per-execution watchdogs
// pooled, scenario timelines compiled once per assembly, and the DES
// kernel scheduling through a calendar queue with eager cancellation —
// steady-state campaign execution is down to ~1.7 allocations per
// consensus execution, all per-replica bookkeeping. Rewinding is
// bit-identical to fresh construction (see PERFORMANCE.md, "Reusable
// emulation assemblies"), which is why the determinism guarantee above
// survives the reuse.
//
// # Sharding and resume
//
// Studies also cross process boundaries. EncodeStudy/DecodeStudy give a
// Study a versioned JSON wire form ({"v":1,"name":...,"points":[...]},
// unknown fields, engines, and versions rejected), and Frozen
// materializes every default Run would resolve lazily — the per-index
// child seed, the display label, the replica count — so any process
// that freezes the same (spec, seed, replicas) inputs reconstructs the
// identical grid, and running a sub-range of it is bit-identical to the
// same points inside a full 1-process run.
//
// On top of that, RunShardRange executes points [start, end) of a
// frozen study with one durable checkpoint record per completed point
// (a CRC-framed JSONL line in an internal/checkpoint store, carrying
// the point-spec hash, the public Result JSON verbatim, and the binary
// metrics.Digest encoding). Points the store already holds are skipped,
// so a shard killed mid-run loses at most the point in flight and
// resumes from its checkpoint. MergeShardRecords folds the union of
// every shard's records back into the complete grid in index order —
// the same serial fold order as an in-process run — rejecting corrupt
// records (CRC), stale records (point-hash mismatch after a spec
// edit), and duplicates, and failing loudly if any point is missing.
// The merged output is byte-identical to an uninterrupted 1-process
// campaign; cmd/ctsan wraps this in a plan/supervise/merge CLI with
// subprocess isolation, retry, and SIGKILL-resume differential tests.
//
// FrozenPoints exposes the same materialization as a value — one
// FrozenPoint per grid cell with its index, label, engine, derived
// seed, replica count, and PointHash — for callers that enumerate or
// address the grid without running it (the campaign service serves it
// verbatim). The hash covers everything execution depends on, which
// enables WithPointCache: Run consults a PointCache around every point,
// serving hits (with identity fields rewritten to the requesting
// study) and storing misses. Determinism is what makes the cache
// transparent — identical hash means identical result bits — so
// caching, like sharding, changes only where results come from, never
// what they are. The HTTP campaign service (internal/server, cmd/
// ctsand) composes these pieces: DecodeStudy admits specs, FrozenPoints
// powers its grid surfaces, a byte-budgeted LRU over encoded shard
// records implements PointCache, and a streaming Sink fans results to
// any number of live subscribers.
//
// The same pieces compose once more into fleet dispatch: the service
// coordinates studies submitted with ?mode=fleet by leasing contiguous
// frozen-grid ranges to pulling `ctsan worker` processes, which
// execute them via RunShardRange and upload the checkpoint records.
// VerifyShardRecord is the coordinator's acceptance check — CRC plus
// the PointHash its own freeze derived for the index — and the fold is
// the same grid-index order as MergeShardRecords, so a fleet of any
// size (surviving any number of worker crashes via lease expiry)
// streams bytes identical to one in-process Run.
//
// # Observability
//
// Campaign execution is observable without touching determinism.
// WithProgress delivers a serialized, point-index-ordered callback
// after each result reaches the sinks (its ordering guarantees are part
// of the API — see the option's doc). Process-wide telemetry counters
// (points and executions completed, shard attempts/retries, checkpoint
// appends, worker utilization) tick in internal/obs and are served over
// expvar + pprof when a CLI runs with -debug-addr; they read wall
// clocks and so live deliberately outside the bit-identical contract —
// nothing in a Result depends on them. Per-event execution tracing of
// the emulated cluster lives one layer down (internal/trace, surfaced
// by cmd/scenario trace) and is equally result-neutral: attaching a
// tracer changes no Result bit.
package campaign
