package campaign

import (
	"bytes"
	"testing"
)

// specSeeds is the seed corpus of the study-spec decoder fuzz — valid
// documents for every engine plus the malformed shapes DecodeStudy must
// reject. The HTTP submission fuzz (internal/server) seeds from the
// same inputs: the service reuses DecodeStudy verbatim, so the two
// surfaces must reject identically.
func specSeeds(f *testing.F) {
	study := NewStudy("seed",
		SANPoint{N: 3, Replicas: 10},
		LatencyPoint{N: 3, Executions: 5},
		ScenarioPoint{Name: "paper-baseline", Replicas: 1, Executions: 5},
	)
	spec, err := EncodeStudy(study)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(spec)
	f.Add(spec[:len(spec)/2])
	for _, s := range []string{
		`{"v":1,"name":"x","points":[{"engine":"san","spec":{"N":3}}]}`,
		`{"v":2,"name":"x","points":[]}`,
		`{"v":1,"name":"x","points":[{"engine":"quantum","spec":{}}]}`,
		`{"v":1,"name":"x","points":[{"engine":"san","spec":{"N":3,"Replicaz":10}}]}`,
		`{"v":1,"name":"x","points":[{"engine":"emulation","spec":{"N":1e309}}]}`,
		`{"v":1,"name":"x","points":[null]}`,
		`{"v":1}`,
		`[]`,
		`-`,
		``,
	} {
		f.Add([]byte(s))
	}
}

func FuzzDecodeStudy(f *testing.F) {
	specSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		study, err := DecodeStudy(data)
		if err != nil {
			return
		}
		// Anything accepted must re-encode and decode to the same
		// document: the spec format is a fixed point, or resubmitting a
		// fetched spec would drift.
		enc, err := EncodeStudy(study)
		if err != nil {
			t.Fatalf("accepted study does not re-encode: %v", err)
		}
		again, err := DecodeStudy(enc)
		if err != nil {
			t.Fatalf("re-encoded study does not decode: %v", err)
		}
		enc2, err := EncodeStudy(again)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("encode is not a fixed point:\n%s\n%s", enc, enc2)
		}
	})
}
