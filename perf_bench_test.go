// Benchmarks for the parallel campaign engine: one SAN campaign point
// (a replicated transient study at fixed parameters, the unit of the
// Fig. 7b / Table 1 / Fig. 9b sweeps) at one worker versus one worker per
// CPU. The parallel engine is bit-identical to the serial one (see
// PERFORMANCE.md), so these differ only in wall clock.
package ctsan

import (
	"testing"

	"ctsan/internal/sanmodel"
)

// transientPoint runs one campaign point with the given worker count.
func transientPoint(b *testing.B, workers int) {
	p := sanmodel.DefaultParams(5)
	for i := 0; i < b.N; i++ {
		res, err := sanmodel.SimulateWorkers(p, 600, 1e6, uint64(i)+1, workers)
		if err != nil {
			b.Fatal(err)
		}
		if res.Digest.N() == 0 {
			b.Fatal("no replicas completed")
		}
	}
}

// BenchmarkTransientPointSerial is the pre-parallelism baseline.
func BenchmarkTransientPointSerial(b *testing.B) { transientPoint(b, 1) }

// BenchmarkTransientPointParallel fans the replicas across all CPUs.
func BenchmarkTransientPointParallel(b *testing.B) { transientPoint(b, 0) }
