// Tcpcluster: the same consensus implementation the emulator executes in
// virtual time, running for real over loopback TCP — the paper's Neko
// design point (§2.5: Java on TCP/IP, connections established up front).
// Three processes mesh over 127.0.0.1, run a heartbeat failure detector,
// and decide a sequence of ten consensus instances.
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"ctsan/internal/consensus"
	"ctsan/internal/fd"
	"ctsan/internal/neko"
	"ctsan/internal/realnet"
)

func main() {
	flag.Parse()

	const n = 3
	cluster, err := realnet.NewTCPCluster(n, func(err error) { log.Println(err) })
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	engines := make([]*consensus.Engine, n+1)
	for i := 1; i <= n; i++ {
		proc := cluster.Proc(neko.ProcessID(i))
		stack := neko.NewStack(proc)
		det := fd.NewHeartbeat(stack, 100, 70, nil) // generous T: loopback jitter is benign
		engines[i] = consensus.NewEngine(stack, det, consensus.Options{})
		proc.Attach(stack)
	}
	cluster.Start()
	time.Sleep(20 * time.Millisecond) // let heartbeats flow

	for k := uint64(0); k < 10; k++ {
		var (
			wg       sync.WaitGroup
			mu       sync.Mutex
			decision int64
			first    = true
			started  = time.Now()
		)
		wg.Add(n)
		for i := 1; i <= n; i++ {
			i := i
			proc := cluster.Proc(neko.ProcessID(i))
			proc.Invoke(func() {
				engines[i].Propose(k, int64(1000*int(k)+i), func(d consensus.Decision) {
					mu.Lock()
					if first {
						decision = d.Val
						first = false
						fmt.Printf("instance %d: decided %d in %.2f ms\n",
							k, d.Val, float64(time.Since(started))/float64(time.Millisecond))
					} else if d.Val != decision {
						log.Fatalf("instance %d: agreement violated (%d vs %d)", k, d.Val, decision)
					}
					mu.Unlock()
					wg.Done()
				}, nil)
			})
		}
		wg.Wait()
	}
	fmt.Println("10 consensus instances decided consistently over real TCP")
}
