// Fdtuning: explore the failure-detector tuning trade-off of §2.4 — a
// small timeout T detects crashes quickly but makes wrong suspicions
// (hurting consensus latency); a large T is accurate but slow to detect.
// The example sweeps T as one campaign Study of Emulation points
// (reporting the QoS metrics and the consensus latency as the rows
// stream out in grid order), then measures the crash detection time T_D
// directly by injecting a crash.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"ctsan/campaign"
	"ctsan/internal/fd"
	"ctsan/internal/neko"
	"ctsan/internal/netsim"
	"ctsan/internal/rng"
)

func main() {
	flag.Parse()

	const n = 5
	grid := []float64{2, 5, 10, 20, 40, 80}
	study := campaign.NewStudy("fd-tuning")
	for _, T := range grid {
		study.Add(campaign.LatencyPoint{
			Name: fmt.Sprintf("T=%g", T), N: n, Executions: 300,
			TimeoutT: T, Seed: 7,
		})
	}
	fmt.Printf("%8s %12s %10s %12s %12s\n", "T [ms]", "T_MR [ms]", "T_M [ms]", "latency[ms]", "T_D [ms]")
	err := campaign.Run(context.Background(), study,
		campaign.WithProgress(func(_, _ int, r *campaign.Result) {
			T := grid[r.Index]
			fmt.Printf("%8.0f %12.2f %10.2f %12.3f %12.2f\n",
				T, r.TMR, r.TM, r.Latency.Mean, detectionTime(n, T))
		}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsmall T: frequent wrong suspicions (small T_MR) inflate latency;")
	fmt.Println("large T: accurate but crashes take ~T+T_h to detect (T_D).")
}

// detectionTime crashes process 2 at t=200 ms and returns the mean time
// until the other processes suspect it permanently (Chen et al.'s T_D).
func detectionTime(n int, timeout float64) float64 {
	params := netsim.DefaultParams(n)
	cluster, err := netsim.New(params, rng.New(99))
	if err != nil {
		log.Fatal(err)
	}
	hist := &fd.History{}
	for i := 1; i <= n; i++ {
		stack := neko.NewStack(cluster.Context(neko.ProcessID(i)))
		fd.NewHeartbeat(stack, timeout, 0.7*timeout, hist)
		cluster.Attach(neko.ProcessID(i), stack)
	}
	cluster.Start()
	const crashAt = 200.0
	cluster.CrashAt(2, crashAt)
	cluster.RunUntil(crashAt + 20*timeout + 200)
	tds := fd.DetectionTimes(hist, 2, crashAt, n)
	sum, cnt := 0.0, 0
	for _, v := range tds {
		sum += v
		cnt++
	}
	return sum / float64(cnt)
}
