// Faultstorm: compose a custom adverse-condition scenario with the
// internal/scenario builder — a correlated storm that no single knob of
// the emulator could express: a GC pause storm on the coordinator's
// host, an asymmetric flaky link, a jittered mid-run crash with
// recovery, and a workload burst, all overlapping. The same timeline can
// be written as JSON and run with `scenario run -spec` (see
// scenario.LoadJSON); this example uses the fluent form and compares the
// storm against the fault-free baseline.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"ctsan/internal/dist"
	"ctsan/internal/scenario"
)

func main() {
	flag.Parse()

	storm := scenario.New("custom-faultstorm", 5).
		WithExecutions(300).
		WithHeartbeat(25, 0).
		WithDoc("overlapping pause storm + flaky link + jittered crash/recover + burst").
		// GC-like freezes on p1, the round-1 coordinator.
		PauseStorm(300, 1500, 1, dist.Exp(50), dist.U(5, 25)).
		// One direction of the p2↔p3 link turns flaky.
		DegradeLink(400, 1400, 2, 3, dist.Exp(1.5), 0.08).
		// p4 crashes somewhere in [600, 700) — drawn per replica — and
		// comes back one second later.
		Crash(600, 4).Jitter(dist.U(0, 100)).
		Recover(1700, 4).
		// Meanwhile the workload doubles its rate.
		WorkloadPhase(800, "burst", 5)

	baseline, err := scenario.Get("paper-baseline")
	if err != nil {
		log.Fatal(err)
	}
	baseline.N = 5 // same cluster size as the storm, for a fair baseline

	reports, err := scenario.RunCampaign(scenario.CampaignSpec{
		Scenarios: []*scenario.Scenario{baseline, storm},
		Replicas:  4,
		Workers:   0, // one per CPU; results identical at any count
		Seed:      42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("4 replicas each, deterministic at any worker count:")
	scenario.ReportTable(reports).Fprint(os.Stdout)
}
