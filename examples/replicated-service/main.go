// Replicated-service: the motivating scenario of §2.3 — a service
// replicated for fault tolerance with active replication. Client requests
// are ordered by atomic broadcast, which is implemented by a sequence of
// consensus executions: request k is delivered at a replica as soon as
// that replica decides in consensus #k. The client takes the first reply.
//
// This example runs in real time over the in-process transport (the same
// protocol code the emulator executes in virtual time), processes a batch
// of banking commands, and shows that all replicas apply them in the same
// order even though they were submitted concurrently to different
// replicas.
package main

import (
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"ctsan/internal/consensus"
	"ctsan/internal/fd"
	"ctsan/internal/neko"
	"ctsan/internal/realnet"
)

// replica is one actively replicated state machine: a tiny account store.
type replica struct {
	mu      sync.Mutex
	id      int
	engine  *consensus.Engine
	proc    *realnet.Proc
	balance map[string]int
	applied []int64
	next    uint64
}

// command encodes "credit account[idx] with amount" as an int64 so it fits
// the consensus value (idx in the high bits, amount in the low).
func command(idx, amount int64) int64 { return idx<<32 | amount }

func decode(v int64) (idx, amount int64) { return v >> 32, v & 0xffffffff }

var accounts = []string{"alice", "bob", "carol"}

func main() {
	flag.Parse()

	const n = 3
	cluster := realnet.NewInProcCluster(n, func(err error) { log.Println(err) })
	replicas := make([]*replica, n+1)
	var wg sync.WaitGroup
	for i := 1; i <= n; i++ {
		proc := cluster.Proc(neko.ProcessID(i))
		stack := neko.NewStack(proc)
		det := fd.NewHeartbeat(stack, 50, 35, nil)
		r := &replica{id: i, proc: proc, balance: make(map[string]int)}
		r.engine = consensus.NewEngine(stack, det, consensus.Options{})
		replicas[i] = r
		proc.Attach(stack)
	}
	cluster.Start()
	defer cluster.Close()

	// Submit 6 commands, alternating the replica that receives the client
	// request. Every replica proposes what it has seen; consensus picks
	// one proposal per slot, so all replicas apply the same sequence.
	commands := []int64{
		command(0, 100), command(1, 250), command(2, 40),
		command(0, 7), command(1, 13), command(2, 99),
	}
	for slot, cmd := range commands {
		slot, cmd := uint64(slot), cmd
		wg.Add(n)
		for i := 1; i <= n; i++ {
			r := replicas[i]
			r.proc.Invoke(func() {
				r.engine.Propose(slot, cmd, func(d consensus.Decision) {
					r.apply(d.Val)
					wg.Done()
				}, nil)
			})
		}
		wg.Wait() // deliver slot k everywhere before opening slot k+1
	}

	time.Sleep(10 * time.Millisecond)
	for i := 1; i <= n; i++ {
		r := replicas[i]
		r.mu.Lock()
		fmt.Printf("replica %d applied %d commands; balances: alice=%d bob=%d carol=%d\n",
			r.id, len(r.applied), r.balance["alice"], r.balance["bob"], r.balance["carol"])
		r.mu.Unlock()
	}
	a, b := replicas[1].snapshot(), replicas[2].snapshot()
	c := replicas[3].snapshot()
	if a != b || b != c {
		log.Fatalf("replicas diverged: %q %q %q", a, b, c)
	}
	fmt.Println("all replicas agree on the applied sequence — atomic broadcast via consensus works")
}

// apply executes a decided command on the replica state.
func (r *replica) apply(v int64) {
	idx, amount := decode(v)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.balance[accounts[idx]] += int(amount)
	r.applied = append(r.applied, v)
}

// snapshot renders the applied sequence for divergence checking.
func (r *replica) snapshot() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return fmt.Sprint(r.applied)
}
