// Sanlatency: solve the paper's SAN model through the public campaign
// API — the modeling half of the methodology as one three-point Study
// covering the three classes of runs of §2.4 — then demonstrate the raw
// SAN engine on a hand-built M/M/1 queue to show the formalism is
// general, not consensus-specific.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"ctsan/campaign"
	"ctsan/internal/dist"
	"ctsan/internal/rng"
	"ctsan/internal/san"
)

func main() {
	flag.Parse()

	study := campaign.NewStudy("three-classes",
		// Class 1: no crashes, accurate failure detectors.
		campaign.SANPoint{Name: "class 1 (no failures, no suspicions)", N: 5},
		// Class 2: the first coordinator is initially crashed.
		campaign.SANPoint{Name: "class 2 (coordinator crash)", N: 5, Crashed: []int{1}},
		// Class 3: wrong suspicions with QoS T_MR = 20 ms, T_M = 2 ms.
		campaign.SANPoint{Name: "class 3 (wrong suspicions, exp FD)", N: 5,
			TMR: 20, TM: 2, FDExponential: true},
	)
	err := campaign.Run(context.Background(), study,
		campaign.WithSeed(4),
		campaign.WithReplicas(2000),
		campaign.WithProgress(func(_, _ int, r *campaign.Result) {
			fmt.Printf("%-42s mean %.3f ms  p50 %.3f  p90 %.3f\n",
				r.Point+":", r.Latency.Mean, r.Latency.P50, r.Latency.P90)
		}))
	if err != nil {
		log.Fatal(err)
	}

	mm1()
}

// mm1 builds an M/M/1 queue as a SAN (arrivals, a single server seized by
// waiting customers) and checks Little's law against theory.
func mm1() {
	const (
		lambda = 0.8 // arrivals per ms
		mu     = 1.0 // services per ms
	)
	m := san.NewModel("mm1")
	src := m.Place("Source", 1)
	queue := m.Place("Queue", 0)
	server := m.Place("Server", 1)
	busy := m.Place("Busy", 0)
	served := m.Place("Served", 0)
	m.Timed("arrive", san.Fixed(dist.Exp(1/lambda))).Input(src).Output(src, queue)
	m.Instant("seize", 0).Input(queue, server).FIFO(queue).Output(busy)
	m.Timed("serve", san.Fixed(dist.Exp(1/mu))).Input(busy).Output(server, served)

	sim := san.NewSim(m, rng.New(11))
	// Time-average the number in system: integrate the state that held
	// over each inter-event interval.
	var area, last, prev float64
	sim.OnFire(func(*san.Activity, int) {
		now := sim.Now()
		area += prev * (now - last)
		last = now
		prev = float64(sim.Marking().Get(queue) + sim.Marking().Get(busy))
	})
	const horizon = 200000.0
	sim.Run(horizon, nil)
	avg := area / sim.Now()
	rho := lambda / mu
	fmt.Printf("M/M/1 via the SAN engine: avg customers %.2f (theory rho/(1-rho) = %.2f), served %d\n",
		avg, rho/(1-rho), sim.Marking().Get(served))
}
