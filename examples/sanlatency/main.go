// Sanlatency: build and solve the paper's SAN model directly through the
// sanmodel/san APIs — the modeling half of the methodology. It runs the
// three classes of runs of §2.4 and prints the latency distributions, then
// demonstrates the raw SAN engine on a hand-built M/M/1 queue to show the
// formalism is general, not consensus-specific.
package main

import (
	"fmt"
	"log"

	"ctsan/internal/dist"
	"ctsan/internal/rng"
	"ctsan/internal/san"
	"ctsan/internal/sanmodel"
)

func main() {
	// Class 1: no crashes, accurate failure detectors.
	p := sanmodel.DefaultParams(5)
	show("class 1 (no failures, no suspicions)", p)

	// Class 2: the first coordinator is initially crashed.
	p = sanmodel.DefaultParams(5)
	p.Crashed = []int{1}
	show("class 2 (coordinator crash)", p)

	// Class 3: wrong suspicions with QoS T_MR = 20 ms, T_M = 2 ms.
	p = sanmodel.DefaultParams(5)
	p.FD = sanmodel.FDModel{TMR: 20, TM: 2, Kind: sanmodel.FDExponential}
	show("class 3 (wrong suspicions, exp FD)", p)

	mm1()
}

func show(title string, p sanmodel.Params) {
	res, err := sanmodel.Simulate(p, 2000, 1e6, 4)
	if err != nil {
		log.Fatal(err)
	}
	e := res.ECDF()
	fmt.Printf("%-42s mean %.3f ms  p50 %.3f  p90 %.3f\n",
		title+":", res.Acc.Mean(), e.Quantile(0.5), e.Quantile(0.9))
}

// mm1 builds an M/M/1 queue as a SAN (arrivals, a single server seized by
// waiting customers) and checks Little's law against theory.
func mm1() {
	const (
		lambda = 0.8 // arrivals per ms
		mu     = 1.0 // services per ms
	)
	m := san.NewModel("mm1")
	src := m.Place("Source", 1)
	queue := m.Place("Queue", 0)
	server := m.Place("Server", 1)
	busy := m.Place("Busy", 0)
	served := m.Place("Served", 0)
	m.Timed("arrive", san.Fixed(dist.Exp(1/lambda))).Input(src).Output(src, queue)
	m.Instant("seize", 0).Input(queue, server).FIFO(queue).Output(busy)
	m.Timed("serve", san.Fixed(dist.Exp(1/mu))).Input(busy).Output(server, served)

	sim := san.NewSim(m, rng.New(11))
	// Time-average the number in system: integrate the state that held
	// over each inter-event interval.
	var area, last, prev float64
	sim.OnFire(func(*san.Activity, int) {
		now := sim.Now()
		area += prev * (now - last)
		last = now
		prev = float64(sim.Marking().Get(queue) + sim.Marking().Get(busy))
	})
	const horizon = 200000.0
	sim.Run(horizon, nil)
	avg := area / sim.Now()
	rho := lambda / mu
	fmt.Printf("M/M/1 via the SAN engine: avg customers %.2f (theory rho/(1-rho) = %.2f), served %d\n",
		avg, rho/(1-rho), sim.Marking().Get(served))
}
