// Quickstart: run one Chandra–Toueg ◇S consensus among 5 processes on the
// emulated cluster, print the decision of every process and the latency
// (time from the common proposal instant t_0 to the first decision, §2.3).
package main

import (
	"flag"
	"fmt"
	"log"

	"ctsan/internal/consensus"
	"ctsan/internal/fd"
	"ctsan/internal/neko"
	"ctsan/internal/netsim"
	"ctsan/internal/rng"
)

func main() {
	flag.Parse()

	const n = 5
	cluster, err := netsim.New(netsim.DefaultParams(n), rng.New(42))
	if err != nil {
		log.Fatal(err)
	}

	// One protocol stack per process: a heartbeat failure detector
	// (timeout T = 30 ms, period T_h = 0.7·T as in §5.4) under a consensus
	// engine.
	engines := make([]*consensus.Engine, n+1)
	for i := 1; i <= n; i++ {
		stack := neko.NewStack(cluster.Context(neko.ProcessID(i)))
		det := fd.NewHeartbeat(stack, 30, 21, nil)
		engines[i] = consensus.NewEngine(stack, det, consensus.Options{})
		cluster.Attach(neko.ProcessID(i), stack)
	}
	cluster.Start()

	// Every process proposes its own id as the value at local time
	// t_0 = 10 ms (clocks are skewed within ±50 µs, like the paper's
	// NTP-synchronized hosts).
	const t0 = 10.0
	decided := 0
	for i := 1; i <= n; i++ {
		i := i
		cluster.StartAt(neko.ProcessID(i), t0, func() {
			engines[i].Propose(1, int64(100+i), func(d consensus.Decision) {
				fmt.Printf("p%d decided value %d in round %d at t=%.3f ms (latency %.3f ms)\n",
					i, d.Val, d.Round, d.At, d.At-t0)
				decided++
			}, nil)
		})
	}
	cluster.Run(func() bool { return decided == n })
	fmt.Printf("all %d processes decided; %d messages delivered, %d events simulated\n",
		n, cluster.Delivered(), cluster.Steps())
}
